package vclock

import (
	"container/heap"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Sim is a discrete-event simulated clock.
//
// Goroutines participating in the simulation must be started with
// Sim.Go; the clock counts how many of them are runnable. Whenever every
// tracked goroutine is blocked in a clock-mediated wait (Sleep, a timer,
// or a Mailbox receive), the clock advances directly to the earliest
// pending deadline and fires it. Simulated time therefore never passes
// while any tracked goroutine has work to do, and passes instantly when
// none does.
//
// Tracked goroutines must not block on plain Go channels or mutexes held
// across waits; all blocking must go through the clock (Sleep, Mailbox,
// AfterFunc). Code outside the simulation synchronizes with it through
// Sim.Wait, which blocks until every tracked goroutine has exited.
type Sim struct {
	mu       sync.Mutex
	done     sync.Cond // broadcast when the simulation becomes fully idle
	now      time.Time
	running  int // tracked goroutines currently runnable
	waiters  int // tracked goroutines blocked in clock waits
	timers   timerHeap
	seq      uint64
	waitTags map[uint64]string // active wait labels, for deadlock reports
	tagSeq   uint64

	// onDeadlock, if set, is invoked (with the lock released) instead of
	// panicking when the simulation deadlocks: every tracked goroutine is
	// blocked and no timer is pending. Intended for tests.
	onDeadlock func(waiting []string)
	deadlocked bool
}

// NewSim returns a simulated clock positioned at Epoch.
func NewSim() *Sim {
	s := &Sim{now: Epoch, waitTags: make(map[uint64]string)}
	s.done.L = &s.mu
	return s
}

// Now returns the current simulated time.
func (s *Sim) Now() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// Since returns the simulated time elapsed since t.
func (s *Sim) Since(t time.Time) time.Duration { return s.Now().Sub(t) }

// Go starts fn as a tracked simulation goroutine.
func (s *Sim) Go(fn func()) {
	s.mu.Lock()
	s.running++
	s.mu.Unlock()
	go func() {
		defer s.exit()
		fn()
	}()
}

func (s *Sim) exit() {
	s.mu.Lock()
	s.running--
	s.maybeAdvanceLocked()
	s.mu.Unlock()
}

// Sleep blocks the calling tracked goroutine for d of simulated time.
func (s *Sim) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	ch := make(chan struct{})
	s.mu.Lock()
	tag := s.tagLocked("sleep")
	s.scheduleLocked(d, func() {
		s.running++
		s.waiters--
		delete(s.waitTags, tag)
		close(ch)
	})
	s.blockLocked()
	s.mu.Unlock()
	<-ch
}

// After returns a channel that delivers the simulated time after d.
//
// In simulated mode the channel must be consumed through WaitTime (or by
// an untracked goroutine); a tracked goroutine receiving from it directly
// would block invisibly to the clock and stall the simulation.
func (s *Sim) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	s.mu.Lock()
	s.scheduleLocked(d, func() {
		s.running++ // wake credit claimed by WaitTime
		ch <- s.now
	})
	s.mu.Unlock()
	return ch
}

// WaitTime blocks the calling tracked goroutine until ch (obtained from
// After on this clock) delivers, and returns the delivered time.
func (s *Sim) WaitTime(ch <-chan time.Time) time.Time {
	s.mu.Lock()
	tag := s.tagLocked("wait-time")
	s.blockLocked()
	s.mu.Unlock()
	t := <-ch
	s.mu.Lock()
	s.waiters--
	delete(s.waitTags, tag)
	s.mu.Unlock()
	return t
}

// AfterFunc schedules f to run as a new tracked goroutine after d of
// simulated time. The returned Timer can cancel the call.
func (s *Sim) AfterFunc(d time.Duration, f func()) *Timer {
	s.mu.Lock()
	defer s.mu.Unlock()
	cancelled := false
	fired := false
	s.scheduleLocked(d, func() {
		if cancelled {
			return
		}
		fired = true
		s.running++
		go func() {
			defer s.exit()
			f()
		}()
	})
	return &Timer{stop: func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		if fired || cancelled {
			return false
		}
		cancelled = true
		return true
	}}
}

// scheduleLocked queues fire to run, with the clock lock held, once d has
// elapsed. fire must not block and must not re-lock the clock.
func (s *Sim) scheduleLocked(d time.Duration, fire func()) {
	if d < 0 {
		d = 0
	}
	s.seq++
	heap.Push(&s.timers, &timerEvent{when: s.now.Add(d), seq: s.seq, fire: fire})
}

// blockLocked transitions the calling goroutine from runnable to waiting
// and advances time if the simulation has gone idle. The caller must
// already have registered its wake-up (timer or mailbox waiter) and must
// park on its own channel after releasing the lock.
func (s *Sim) blockLocked() {
	s.running--
	s.waiters++
	s.maybeAdvanceLocked()
}

// maybeAdvanceLocked advances simulated time while no tracked goroutine
// is runnable. Each fired event may make a goroutine runnable again,
// which stops the advance.
func (s *Sim) maybeAdvanceLocked() {
	for s.running == 0 {
		if s.timers.Len() == 0 {
			// Fully idle: either the simulation has finished (no waiters)
			// or it has deadlocked. Either way, wake Wait callers.
			s.done.Broadcast()
			if s.waiters > 0 {
				s.deadlockLocked()
			}
			return
		}
		ev := heap.Pop(&s.timers).(*timerEvent)
		if ev.when.After(s.now) {
			s.now = ev.when
		}
		ev.fire()
	}
}

func (s *Sim) deadlockLocked() {
	if s.deadlocked {
		return // report once
	}
	s.deadlocked = true
	waiting := make([]string, 0, len(s.waitTags))
	for _, tag := range s.waitTags {
		waiting = append(waiting, tag)
	}
	sort.Strings(waiting)
	if h := s.onDeadlock; h != nil {
		s.running++ // keep the clock from re-entering while the handler runs
		go func() {
			defer s.exit()
			h(waiting)
		}()
		return
	}
	panic(fmt.Sprintf("vclock: simulation deadlock: %d goroutines blocked with no pending timers: %v",
		s.waiters, waiting))
}

// SetDeadlockHandler installs h to be called instead of panicking when
// the simulation deadlocks. Pass nil to restore the panicking default.
func (s *Sim) SetDeadlockHandler(h func(waiting []string)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.onDeadlock = h
}

// Wait blocks the (untracked) caller until the simulation is fully idle:
// all tracked goroutines have exited and no timers remain. It returns the
// final simulated time.
func (s *Sim) Wait() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	// A deadlocked simulation never becomes idle, but once its handler
	// goroutine (counted in running) finishes there is nothing to wait
	// for. Waiters and timers are otherwise drained by the advance loop.
	for s.running > 0 || ((s.waiters > 0 || s.timers.Len() > 0) && !s.deadlocked) {
		s.done.Wait()
	}
	return s.now
}

// Deadlocked reports whether the simulation has detected a deadlock.
func (s *Sim) Deadlocked() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.deadlocked
}

func (s *Sim) tagLocked(kind string) uint64 {
	s.tagSeq++
	s.waitTags[s.tagSeq] = fmt.Sprintf("%s#%d@%s", kind, s.tagSeq, s.now.Format("15:04:05.000"))
	return s.tagSeq
}

// timerEvent is one pending clock event. Events at equal deadlines fire
// in scheduling order, keeping runs reproducible.
type timerEvent struct {
	when  time.Time
	seq   uint64
	index int
	fire  func()
}

type timerHeap []*timerEvent

func (h timerHeap) Len() int { return len(h) }

func (h timerHeap) Less(i, j int) bool {
	if !h[i].when.Equal(h[j].when) {
		return h[i].when.Before(h[j].when)
	}
	return h[i].seq < h[j].seq
}

func (h timerHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *timerHeap) Push(x any) {
	ev := x.(*timerEvent)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
