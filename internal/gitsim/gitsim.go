// Package gitsim is the synthetic stand-in for GitHub in the MSR
// workload: a deterministic catalog of repositories with realistic size
// distributions, a search API with latency, and the popular-NPM-library
// stream the paper's pipeline consumes.
//
// Only repository identities and sizes matter to the schedulers under
// study — content never does — so a repository here is a name plus a size
// and popularity metadata.
package gitsim

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Repo is one synthetic Git repository.
type Repo struct {
	// Name is the unique "owner/project" identifier; it doubles as the
	// data key workers cache clones under.
	Name string
	// SizeMB is the clone size.
	SizeMB float64
	// Stars and Forks are popularity metadata used by search filters.
	Stars int
	Forks int
}

// SizeClass selects a repository size distribution, mirroring the
// paper's configurations (§6.3.1: sizes "ranging between 1MB and 1GB").
type SizeClass int

const (
	// Small draws sizes uniformly from 1–50 MB.
	Small SizeClass = iota
	// Medium draws sizes uniformly from 50–500 MB.
	Medium
	// Large draws sizes uniformly from 500–1000 MB.
	Large
	// Mixed draws each repository's class uniformly from the above
	// three, giving the paper's "equal distribution of repository sizes".
	Mixed
	// HugeLive draws sizes uniformly from 500–3000 MB, matching the
	// non-simulated MSR experiments (§6.4), which mined favoured
	// large-scale repositories.
	HugeLive
)

// String returns the class name used in configuration files and output.
func (c SizeClass) String() string {
	switch c {
	case Small:
		return "small"
	case Medium:
		return "medium"
	case Large:
		return "large"
	case Mixed:
		return "mixed"
	case HugeLive:
		return "huge-live"
	default:
		return fmt.Sprintf("SizeClass(%d)", int(c))
	}
}

// draw samples a size in MB for the class.
func (c SizeClass) draw(rng *rand.Rand) float64 {
	uniform := func(lo, hi float64) float64 { return lo + rng.Float64()*(hi-lo) }
	switch c {
	case Small:
		return uniform(1, 50)
	case Medium:
		return uniform(50, 500)
	case Large:
		return uniform(500, 1000)
	case HugeLive:
		return uniform(500, 3000)
	default: // Mixed
		switch rng.Intn(3) {
		case 0:
			return uniform(1, 50)
		case 1:
			return uniform(50, 500)
		default:
			return uniform(500, 1000)
		}
	}
}

// SampleSize draws one repository size in MB for the class using rng.
// Workload generators use it to mix classes in paper-defined proportions.
func SampleSize(c SizeClass, rng *rand.Rand) float64 { return c.draw(rng) }

// Catalog is an immutable set of repositories.
type Catalog struct {
	repos  []Repo
	byName map[string]*Repo
}

// GenerateCatalog deterministically creates n repositories of the given
// size class from seed.
func GenerateCatalog(n int, class SizeClass, seed int64) *Catalog {
	rng := rand.New(rand.NewSource(seed))
	c := &Catalog{byName: make(map[string]*Repo, n)}
	c.repos = make([]Repo, 0, n)
	for i := 0; i < n; i++ {
		r := Repo{
			Name:   fmt.Sprintf("org-%02d/repo-%04d", i%17, i),
			SizeMB: class.draw(rng),
			Stars:  5000 + rng.Intn(95000),
			Forks:  5000 + rng.Intn(45000),
		}
		c.repos = append(c.repos, r)
		c.byName[r.Name] = &c.repos[len(c.repos)-1]
	}
	return c
}

// Len returns the number of repositories.
func (c *Catalog) Len() int { return len(c.repos) }

// Repos returns all repositories in generation order. The slice is
// shared; callers must not modify it.
func (c *Catalog) Repos() []Repo { return c.repos }

// Lookup finds a repository by name.
func (c *Catalog) Lookup(name string) (Repo, bool) {
	r, ok := c.byName[name]
	if !ok {
		return Repo{}, false
	}
	return *r, true
}

// TotalMB returns the combined clone size of the catalog.
func (c *Catalog) TotalMB() float64 {
	var sum float64
	for _, r := range c.repos {
		sum += r.SizeMB
	}
	return sum
}

// Filter selects repositories in a search, mirroring the motivating
// example's query (repositories larger than 500 MB with at least 5000
// stars and forks).
type Filter struct {
	MinSizeMB float64
	MinStars  int
	MinForks  int
	// Limit caps the result count; zero means no cap.
	Limit int
}

// Search returns the repositories matching f, sorted by descending
// stars — the "favoured large-scale projects" first.
func (c *Catalog) Search(f Filter) []Repo {
	out := make([]Repo, 0, len(c.repos))
	for _, r := range c.repos {
		if r.SizeMB >= f.MinSizeMB && r.Stars >= f.MinStars && r.Forks >= f.MinForks {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Stars != out[j].Stars {
			return out[i].Stars > out[j].Stars
		}
		return out[i].Name < out[j].Name
	})
	if f.Limit > 0 && len(out) > f.Limit {
		out = out[:f.Limit]
	}
	return out
}

// Hub wraps a catalog with API behaviour: the latency a caller should
// charge per search call (the engine sleeps for it on its clock).
type Hub struct {
	*Catalog
	// APILatency is the simulated round-trip time of one search call.
	APILatency time.Duration
}

// NewHub returns a Hub over the catalog with the given API latency.
func NewHub(c *Catalog, apiLatency time.Duration) *Hub {
	return &Hub{Catalog: c, APILatency: apiLatency}
}

// popularNPM is the seed list of popular NPM libraries from the
// motivating example's structured input (step 1 of the §2 protocol).
var popularNPM = []string{
	"lodash", "react", "chalk", "axios", "express", "moment", "tslib",
	"commander", "debug", "async", "react-dom", "fs-extra", "prop-types",
	"request", "bluebird", "vue", "uuid", "classnames", "yargs", "webpack",
	"underscore", "mkdirp", "glob", "colors", "body-parser", "rxjs",
	"babel-core", "jquery", "minimist", "inquirer",
}

// Libraries returns n library names for the input stream: the popular
// NPM list first, then deterministic synthetic names.
func Libraries(n int) []string {
	if n <= len(popularNPM) {
		out := make([]string, n)
		copy(out, popularNPM[:n])
		return out
	}
	out := make([]string, 0, n)
	out = append(out, popularNPM...)
	for i := len(popularNPM); i < n; i++ {
		out = append(out, fmt.Sprintf("lib-%03d", i))
	}
	return out
}
