package gitsim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestGenerateCatalogDeterministic(t *testing.T) {
	a := GenerateCatalog(50, Mixed, 42)
	b := GenerateCatalog(50, Mixed, 42)
	if a.Len() != 50 || b.Len() != 50 {
		t.Fatalf("Len = %d/%d", a.Len(), b.Len())
	}
	for i := range a.Repos() {
		if a.Repos()[i] != b.Repos()[i] {
			t.Fatalf("repo %d differs between identically seeded catalogs", i)
		}
	}
	c := GenerateCatalog(50, Mixed, 43)
	same := true
	for i := range a.Repos() {
		if a.Repos()[i].SizeMB != c.Repos()[i].SizeMB {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical catalogs")
	}
}

func TestSizeClassRanges(t *testing.T) {
	cases := []struct {
		class  SizeClass
		lo, hi float64
	}{
		{Small, 1, 50},
		{Medium, 50, 500},
		{Large, 500, 1000},
		{Mixed, 1, 1000},
		{HugeLive, 500, 3000},
	}
	for _, tc := range cases {
		cat := GenerateCatalog(200, tc.class, 7)
		for _, r := range cat.Repos() {
			if r.SizeMB < tc.lo || r.SizeMB > tc.hi {
				t.Errorf("%v: size %.1f outside [%.0f,%.0f]", tc.class, r.SizeMB, tc.lo, tc.hi)
			}
		}
	}
}

func TestMixedCoversAllClasses(t *testing.T) {
	cat := GenerateCatalog(300, Mixed, 11)
	var small, medium, large int
	for _, r := range cat.Repos() {
		switch {
		case r.SizeMB <= 50:
			small++
		case r.SizeMB <= 500:
			medium++
		default:
			large++
		}
	}
	if small == 0 || medium == 0 || large == 0 {
		t.Errorf("mixed split %d/%d/%d misses a class", small, medium, large)
	}
}

func TestSizeClassString(t *testing.T) {
	names := map[SizeClass]string{
		Small: "small", Medium: "medium", Large: "large",
		Mixed: "mixed", HugeLive: "huge-live", SizeClass(99): "SizeClass(99)",
	}
	for class, want := range names {
		if got := class.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", int(class), got, want)
		}
	}
}

func TestLookup(t *testing.T) {
	cat := GenerateCatalog(10, Small, 1)
	name := cat.Repos()[3].Name
	r, ok := cat.Lookup(name)
	if !ok || r.Name != name {
		t.Errorf("Lookup(%q) = %+v, %v", name, r, ok)
	}
	if _, ok := cat.Lookup("no/such"); ok {
		t.Error("Lookup found a missing repo")
	}
}

func TestTotalMB(t *testing.T) {
	cat := GenerateCatalog(25, Small, 1)
	var want float64
	for _, r := range cat.Repos() {
		want += r.SizeMB
	}
	if got := cat.TotalMB(); got != want {
		t.Errorf("TotalMB = %v, want %v", got, want)
	}
}

func TestSearchFiltersAndSorts(t *testing.T) {
	cat := GenerateCatalog(100, Mixed, 5)
	f := Filter{MinSizeMB: 500, MinStars: 20000, MinForks: 10000}
	got := cat.Search(f)
	for _, r := range got {
		if r.SizeMB < 500 || r.Stars < 20000 || r.Forks < 10000 {
			t.Errorf("search returned non-matching repo %+v", r)
		}
	}
	for i := 1; i < len(got); i++ {
		if got[i].Stars > got[i-1].Stars {
			t.Error("search results not sorted by descending stars")
		}
	}
	if limited := cat.Search(Filter{Limit: 3}); len(limited) != 3 {
		t.Errorf("Limit ignored: got %d results", len(limited))
	}
	if all := cat.Search(Filter{}); len(all) != 100 {
		t.Errorf("empty filter returned %d of 100", len(all))
	}
}

func TestHub(t *testing.T) {
	cat := GenerateCatalog(10, Small, 1)
	hub := NewHub(cat, 250*time.Millisecond)
	if hub.APILatency != 250*time.Millisecond {
		t.Errorf("APILatency = %v", hub.APILatency)
	}
	if hub.Len() != 10 {
		t.Errorf("hub catalog Len = %d", hub.Len())
	}
}

func TestLibraries(t *testing.T) {
	if got := Libraries(5); len(got) != 5 || got[0] != "lodash" {
		t.Errorf("Libraries(5) = %v", got)
	}
	got := Libraries(40)
	if len(got) != 40 {
		t.Fatalf("Libraries(40) returned %d", len(got))
	}
	seen := make(map[string]bool)
	for _, l := range got {
		if seen[l] {
			t.Errorf("duplicate library %q", l)
		}
		seen[l] = true
	}
	if got := Libraries(0); len(got) != 0 {
		t.Errorf("Libraries(0) = %v", got)
	}
}

// Property: every generated repo name is unique and resolvable.
func TestPropertyCatalogNamesUnique(t *testing.T) {
	prop := func(nRaw uint8, seed int64) bool {
		n := int(nRaw%100) + 1
		cat := GenerateCatalog(n, Mixed, seed)
		seen := make(map[string]bool, n)
		for _, r := range cat.Repos() {
			if seen[r.Name] {
				return false
			}
			seen[r.Name] = true
			if got, ok := cat.Lookup(r.Name); !ok || got != r {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: search results are always a subset of the catalog satisfying
// the filter, and Limit is never exceeded.
func TestPropertySearchSound(t *testing.T) {
	prop := func(seed int64, minSize uint16, limit uint8) bool {
		cat := GenerateCatalog(60, Mixed, seed)
		f := Filter{MinSizeMB: float64(minSize % 1200), Limit: int(limit % 20)}
		got := cat.Search(f)
		if f.Limit > 0 && len(got) > f.Limit {
			return false
		}
		for _, r := range got {
			if r.SizeMB < f.MinSizeMB {
				return false
			}
			if _, ok := cat.Lookup(r.Name); !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkGenerateCatalog(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		GenerateCatalog(100, Mixed, int64(i))
	}
}

func BenchmarkSearch(b *testing.B) {
	cat := GenerateCatalog(500, Mixed, 1)
	f := Filter{MinSizeMB: 500, MinStars: 20000}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cat.Search(f)
	}
}
